package histogram

import (
	"math/bits"
	"math/rand"
	"testing"

	"approxobj/internal/planetest"
	"approxobj/internal/prim"
	"approxobj/internal/satmath"
)

// TestBucketsLayout pins the rounded-bucket geometry for several
// accuracy factors: every value lands in exactly one bucket whose range
// contains it, ranges are contiguous, and the factor-k rounding
// guarantee Hi(j) <= k*Lo(j) - 1 holds for every bucket.
func TestBucketsLayout(t *testing.T) {
	for _, k := range []uint64{2, 3, 10} {
		b, err := NewBuckets(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Index(0); got != 0 {
			t.Errorf("k=%d: Index(0) = %d, want 0", k, got)
		}
		if b.Lo(0) != 0 || b.Hi(0) != 0 {
			t.Errorf("k=%d: bucket 0 = [%d, %d], want [0, 0]", k, b.Lo(0), b.Hi(0))
		}
		for j := 1; j < b.N(); j++ {
			lo, hi := b.Lo(j), b.Hi(j)
			if lo > hi {
				t.Fatalf("k=%d: bucket %d = [%d, %d] inverted", k, j, lo, hi)
			}
			if prev := b.Hi(j - 1); lo != prev+1 {
				t.Errorf("k=%d: bucket %d starts at %d, want contiguous after %d", k, j, lo, prev)
			}
			if hi != ^uint64(0) && (lo > ^uint64(0)/k || hi > lo*k-1) {
				t.Errorf("k=%d: bucket %d = [%d, %d] wider than factor %d", k, j, lo, hi, k)
			}
			for _, v := range []uint64{lo, hi} {
				if got := b.Index(v); got != j {
					t.Errorf("k=%d: Index(%d) = %d, want %d", k, v, got, j)
				}
			}
		}
		// The top bucket reaches the top of the domain.
		if got := b.Index(^uint64(0)); got != b.N()-1 {
			t.Errorf("k=%d: Index(MaxUint64) = %d, want top bucket %d", k, got, b.N()-1)
		}
		if hi := b.Hi(b.N() - 1); hi != ^uint64(0) {
			t.Errorf("k=%d: top bucket Hi = %d, want MaxUint64", k, hi)
		}
	}

	// k = 2 has a closed form: Index(v) = bits.Len(v) for v >= 1.
	b2, err := NewBuckets(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40, ^uint64(0)} {
		if got, want := b2.Index(v), bits.Len64(v); got != want {
			t.Errorf("k=2: Index(%d) = %d, want %d", v, got, want)
		}
	}

	// A bound shrinks the table to exactly the buckets the domain needs.
	bb, err := NewBuckets(2, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if bb.N() != 11 { // {0}, [1,1], ..., [512, 1023]
		t.Errorf("k=2 bound 1024: N = %d, want 11", bb.N())
	}
	if !bb.Contains(1023) || bb.Contains(1024) {
		t.Error("Contains must accept 1023 and reject 1024 for bound 1024")
	}
}

// TestBucketsExact pins the k = 1 bucket-per-value table and the layout
// validation errors.
func TestBucketsExact(t *testing.T) {
	b, err := NewBuckets(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 100 {
		t.Errorf("exact bound 100: N = %d, want 100", b.N())
	}
	for _, v := range []uint64{0, 1, 42, 99} {
		if b.Index(v) != int(v) || b.Lo(int(v)) != v || b.Hi(int(v)) != v {
			t.Errorf("exact: bucket of %d is not the value itself", v)
		}
	}
	for _, tc := range []struct{ k, bound uint64 }{
		{0, 10},                  // k < 1
		{1, 0},                   // exact without a domain
		{1, MaxExactBuckets + 1}, // exact table too large
	} {
		if _, err := NewBuckets(tc.k, tc.bound); err == nil {
			t.Errorf("NewBuckets(%d, %d) accepted, want error", tc.k, tc.bound)
		}
	}
}

// TestQueryEngineAgainstReference drives random value sets through the
// bucket layout and checks every query against the documented
// deterministic bound relative to the exact reference — with no
// buffering in play (U = 0), so the bounds are pure bucket rounding.
func TestQueryEngineAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []uint64{1, 2, 4} {
		bound := uint64(1 << 12)
		b, err := NewBuckets(k, bound)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]uint64, 5000)
		counts := make([]uint64, b.N())
		for i := range values {
			// Skewed toward small values, like a latency distribution.
			v := uint64(rng.ExpFloat64() * 200)
			if v >= bound {
				v = bound - 1
			}
			values[i] = v
			counts[b.Index(v)]++
		}
		ref := planetest.NewExactRef(values)

		if got := Count(counts); got != uint64(len(values)) {
			t.Errorf("k=%d: Count = %d, want %d", k, got, len(values))
		}
		if got := Sum(b, counts); got > ref.Sum() || satmath.Mul(got, k) < ref.Sum() {
			t.Errorf("k=%d: Sum = %d outside [%d/%d, %d]", k, got, ref.Sum(), k, ref.Sum())
		}
		for _, v := range []uint64{0, 1, 17, 100, 555, bound - 1} {
			got := Rank(b, counts, v)
			lo, hi := ref.Rank(v), ref.Rank(b.Hi(b.Index(v)))
			if got < lo || got > hi {
				t.Errorf("k=%d: Rank(%d) = %d outside [A(v), A(Hi)] = [%d, %d]", k, v, got, lo, hi)
			}
			wantCDF := float64(got) / float64(len(values))
			if cdf := CDF(b, counts, v); cdf != wantCDF {
				t.Errorf("k=%d: CDF(%d) = %v, want Rank/Count = %v", k, v, cdf, wantCDF)
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			got := Quantile(b, counts, q)
			y := ref.At(TargetRank(q, uint64(len(values))))
			if got > y {
				t.Errorf("k=%d: Quantile(%v) = %d overstates the rank value %d", k, q, got, y)
			} else if k > 1 && y > 0 && satmath.Mul(got, k) <= y {
				t.Errorf("k=%d: Quantile(%v) = %d understates %d by more than factor %d", k, q, got, y, k)
			}
			if k == 1 && got != y {
				t.Errorf("exact: Quantile(%v) = %d, want %d", q, got, y)
			}
		}
	}
}

// TestQuantileEdge pins the degenerate query cases.
func TestQuantileEdge(t *testing.T) {
	b, err := NewBuckets(2, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	empty := make([]uint64, b.N())
	if Quantile(b, empty, 0.5) != 0 || Count(empty) != 0 || CDF(b, empty, 7) != 0 {
		t.Error("empty histogram queries must return 0")
	}
	counts := make([]uint64, b.N())
	counts[b.Index(3)] = 5
	counts[b.Index(100)] = 5
	if got := Quantile(b, counts, 0); got != b.Lo(b.Index(3)) {
		t.Errorf("Quantile(0) = %d, want the minimum's bucket floor %d", got, b.Lo(b.Index(3)))
	}
	if got := Quantile(b, counts, 1); got != b.Lo(b.Index(100)) {
		t.Errorf("Quantile(1) = %d, want the maximum's bucket floor %d", got, b.Lo(b.Index(100)))
	}
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			Quantile(b, counts, q)
		}()
	}
}

// TestVector pins the per-shard bucket vector: additions from several
// processes sum on read, a later addition to a known bucket is a single
// register write, and a re-created handle continues from the row's
// current counts instead of restarting at zero.
func TestVector(t *testing.T) {
	f := prim.NewFactory(3)
	v, err := NewVector(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Buckets() != 4 {
		t.Fatalf("Buckets = %d, want 4", v.Buckets())
	}
	h0 := v.HistHandle(f.Proc(0))
	h1 := v.HistHandle(f.Proc(1))
	h0.AddN(2, 5)
	h1.AddN(2, 7)
	h1.AddN(0, 1)
	reader := v.HistHandle(f.Proc(2))
	got := reader.Read()
	if got[0] != 1 || got[1] != 0 || got[2] != 12 || got[3] != 0 {
		t.Errorf("Read = %v, want [1 0 12 0]", got)
	}

	// First addition to a bucket reads the register once (2 steps);
	// later additions to the same bucket are one write.
	p := f.Proc(0)
	before := p.Steps()
	h0.AddN(2, 1)
	if d := p.Steps() - before; d != 1 {
		t.Errorf("repeat AddN took %d steps, want 1 (cached row)", d)
	}
	before = p.Steps()
	h0.AddN(3, 1)
	if d := p.Steps() - before; d != 2 {
		t.Errorf("first AddN to a fresh bucket took %d steps, want 2 (read + write)", d)
	}
	h0.AddN(3, 0) // zero additions take no steps
	if d := p.Steps() - before; d != 2 {
		t.Errorf("AddN(_, 0) took steps")
	}

	// A re-created handle for slot 0 must continue, not reset, bucket 2.
	h0b := v.HistHandle(f.Proc(0))
	h0b.AddN(2, 1)
	if got := reader.Read()[2]; got != 14 {
		t.Errorf("bucket 2 = %d after re-created handle's AddN, want 14", got)
	}

	if _, err := NewVector(prim.NewFactory(1), 0); err == nil {
		t.Error("NewVector accepted zero buckets")
	}
}

// TestExactIndexClampsQueries pins the out-of-domain query behavior of
// the exact layout: Rank/CDF may probe any value (only Observe
// validates), and huge values must land in the top bucket instead of
// overflowing int and silently summing no buckets.
func TestExactIndexClampsQueries(t *testing.T) {
	b, err := NewBuckets(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]uint64, b.N())
	counts[5] = 7
	counts[99] = 3
	for _, v := range []uint64{100, 1 << 40, ^uint64(0)} {
		if got := b.Index(v); got != 99 {
			t.Errorf("Index(%d) = %d, want the top bucket 99", v, got)
		}
		if got := Rank(b, counts, v); got != 10 {
			t.Errorf("Rank(%d) = %d, want the full count 10", v, got)
		}
		if got := CDF(b, counts, v); got != 1 {
			t.Errorf("CDF(%d) = %v, want 1", v, got)
		}
	}
}

// TestRankCDFAtBucketBoundaries pins the inclusion semantics of Rank and
// CDF exactly at the bucket boundaries, where off-by-one bugs hide: a
// probe at Lo(j) or Hi(j) counts bucket j in full (Rank answers "at most
// the top of v's bucket"), and stepping one past Hi(j) picks up the next
// bucket. Quantile(1.0) must land on the highest nonempty bucket's floor
// for every layout.
func TestRankCDFAtBucketBoundaries(t *testing.T) {
	for _, tc := range []struct {
		k     uint64
		bound uint64
	}{
		{1, 64},
		{2, 1 << 10},
		{4, 1 << 10},
		{10, 100_000},
	} {
		b, err := NewBuckets(tc.k, tc.bound)
		if err != nil {
			t.Fatalf("k=%d: %v", tc.k, err)
		}
		counts := make([]uint64, b.N())
		for j := range counts {
			counts[j] = uint64(j%3) + 1 // nonuniform, every bucket nonempty
		}
		total := Count(counts)
		cum := uint64(0)
		for j := 0; j < b.N(); j++ {
			cum += counts[j]
			for _, v := range []uint64{b.Lo(j), b.Hi(j)} {
				if got := Rank(b, counts, v); got != cum {
					t.Errorf("k=%d: Rank(%d) at boundary of bucket %d = %d, want %d", tc.k, v, j, got, cum)
				}
				if got, want := CDF(b, counts, v), float64(cum)/float64(total); got != want {
					t.Errorf("k=%d: CDF(%d) at boundary of bucket %d = %v, want %v", tc.k, v, j, got, want)
				}
			}
			if j+1 < b.N() {
				if got := Rank(b, counts, b.Hi(j)+1); got != cum+counts[j+1] {
					t.Errorf("k=%d: Rank(%d) one past bucket %d = %d, want %d", tc.k, b.Hi(j)+1, j, got, cum+counts[j+1])
				}
			}
		}
		if got, want := Quantile(b, counts, 1.0), b.Lo(b.N()-1); got != want {
			t.Errorf("k=%d: Quantile(1.0) = %d, want top nonempty bucket floor %d", tc.k, got, want)
		}
		// Quantile(1.0) with the top buckets empty must find the highest
		// NONEMPTY bucket, not the last slot of the vector.
		sparse := make([]uint64, b.N())
		mid := b.N() / 2
		sparse[mid] = 9
		if got, want := Quantile(b, sparse, 1.0), b.Lo(mid); got != want {
			t.Errorf("k=%d: sparse Quantile(1.0) = %d, want %d", tc.k, got, want)
		}
	}
}
