package histogram

import (
	"math"

	"approxobj/internal/satmath"
)

// This file is the query engine: it turns a bucket-count vector (the
// merged per-shard counts the sharded runtime produces) into histogram
// answers. Throughout, write A(x) for the true number of observations
// with value <= x, N for the true observation count, and U for the
// number of observations still parked in handle-local buffers (the
// Buffer term of the object's envelope — at most B-1 per handle). The
// counts passed in cover a sub-multiset of the true observations missing
// at most U of them, and every counted observation sits in the bucket
// its value rounds to, so each query's deterministic error bound
// decomposes into a value-domain factor k (bucket rounding) and a
// rank-domain slack U (buffering):
//
//	Count()     in [N-U, N]
//	Sum()       in [S_vis/k, S_vis] for the visible observations' sum
//	            S_vis (at least S - U*maxValue): answers never overstate
//	Rank(v)     in [A(v)-U, A(min(k*v, domainMax))]
//	Quantile(q) = some x with x <= y and k*x > y, where y is the value
//	            whose rank among the visible observations is
//	            ceil(q * Count())
//	CDF(v)      = Rank(v) / Count() from one consistent read
//
// At quiescence after every handle has flushed, U = 0 and the bounds
// collapse to pure bucket rounding (and for the exact k = 1 layout, to
// equality).

// Count returns the total number of counted observations (saturating).
func Count(counts []uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n = satmath.Add(n, c)
	}
	return n
}

// Sum returns the sum of the counted observations, each rounded DOWN to
// its bucket's lower boundary (saturating): Sum never overstates the
// true sum of the counted observations and understates it by at most a
// factor k, since every value v in bucket j satisfies Lo(j) <= v < k*Lo(j)
// for j >= 1 (and is exactly 0 in bucket 0).
func Sum(b Buckets, counts []uint64) uint64 {
	var s uint64
	for j, c := range counts {
		s = satmath.Add(s, satmath.Mul(c, b.Lo(j)))
	}
	return s
}

// Rank returns the number of counted observations in buckets up to and
// including v's: an estimate of A(v) that counts every observation <= v
// (minus buffered ones) and may additionally count observations in
// (v, Hi(Index(v))] — values above v but within its bucket, hence below
// k*v. The deterministic bound: A(v) - U <= Rank(v) <= A(Hi(Index(v))),
// with Hi(Index(v)) <= min(k*v, domain max) for v >= 1 and = 0 for v = 0.
func Rank(b Buckets, counts []uint64, v uint64) uint64 {
	j := b.Index(v)
	var r uint64
	for i := 0; i <= j && i < len(counts); i++ {
		r = satmath.Add(r, counts[i])
	}
	return r
}

// TargetRank is the rank Quantile targets for q over total counted
// observations: ceil(q * total) clamped to [1, total] (q = 0 is the
// minimum; float rounding must not push past the maximum), or 0 when
// the histogram is empty. Exported so checkers mirror the exact rank
// convention instead of re-deriving it.
func TargetRank(q float64, total uint64) uint64 {
	if total == 0 {
		return 0
	}
	r := uint64(math.Ceil(q * float64(total)))
	if r < 1 {
		r = 1
	}
	if r > total {
		r = total
	}
	return r
}

// Quantile returns the q-quantile of the counted observations, rounded
// DOWN to its bucket's lower boundary: the lower boundary x of the first
// bucket whose cumulative count reaches TargetRank(q, Count()). The
// value y of that rank among the counted observations lives in x's
// bucket, so x <= y and k*x > y — a one-sided multiplicative value
// error of k. An empty histogram returns 0. Quantile panics if q is not
// in [0, 1] (like indexing out of range, a caller bug).
func Quantile(b Buckets, counts []uint64, q float64) uint64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic("histogram: quantile q out of range [0, 1]")
	}
	total := Count(counts)
	if total == 0 {
		return 0
	}
	r := TargetRank(q, total)
	var cum uint64
	for j, c := range counts {
		cum = satmath.Add(cum, c)
		if cum >= r {
			return b.Lo(j)
		}
	}
	return b.Lo(len(counts) - 1) // unreachable: cum reaches total
}

// CDF returns Rank(v)/Count over one consistent counts vector: the
// fraction of counted observations <= Hi(Index(v)). An empty histogram
// returns 0.
func CDF(b Buckets, counts []uint64, v uint64) float64 {
	total := Count(counts)
	if total == 0 {
		return 0
	}
	return float64(Rank(b, counts, v)) / float64(total)
}
