package approxobj

import (
	"sync"
	"testing"
)

func TestCounterBasic(t *testing.T) {
	c, err := NewCounter(WithProcs(4), WithAccuracy(Multiplicative(2)))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.K() != 2 {
		t.Fatalf("N=%d K=%d, want 4, 2", c.N(), c.K())
	}
	h := c.Handle(0)
	if got := h.Read(); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Inc()
	}
	x := h.Read()
	if x < 50 || x > 200 {
		t.Fatalf("Read = %d after 100 incs, want within [50, 200] (k=2)", x)
	}
	if h.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
}

func TestCounterRejectsBadParams(t *testing.T) {
	if _, err := NewCounter(WithProcs(100), WithAccuracy(Multiplicative(2))); err == nil {
		t.Fatal("k=2 for n=100 accepted (needs k >= 10)")
	}
	if _, err := NewCounter(WithProcs(0), WithAccuracy(Multiplicative(2))); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewCounter(WithAccuracy(Multiplicative(1))); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestCounterConcurrent(t *testing.T) {
	const n = 8
	const perProc = 10000
	c, err := NewCounter(WithProcs(n), WithAccuracy(Multiplicative(3)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(i)
			for j := 0; j < perProc; j++ {
				h.Inc()
				if j%1000 == 0 {
					h.Read()
				}
			}
		}(i)
	}
	wg.Wait()
	x := c.Handle(0).Read()
	const v = n * perProc
	if x < v/3 || x > v*3 {
		t.Fatalf("final Read = %d, want within [%d, %d]", x, v/3, v*3)
	}
}

func TestExactCounter(t *testing.T) {
	c, err := NewExactCounter(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 {
		t.Fatalf("N = %d, want 4", c.N())
	}
	h0, h1 := c.Handle(0), c.Handle(1)
	h0.Inc()
	h0.Inc()
	h1.Inc()
	if got := h1.Read(); got != 3 {
		t.Fatalf("Read = %d, want 3", got)
	}
	if h1.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
	if _, err := NewExactCounter(0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestExactCounterConcurrent(t *testing.T) {
	const n = 8
	const perProc = 20000
	c, err := NewExactCounter(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(i)
			for j := 0; j < perProc; j++ {
				h.Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := c.Handle(0).Read(); got != n*perProc {
		t.Fatalf("exact counter lost updates: Read = %d, want %d", got, n*perProc)
	}
}

func TestBoundedMaxRegister(t *testing.T) {
	r, err := NewBoundedMaxRegister(2, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound() != 1<<20 || r.K() != 2 {
		t.Fatalf("Bound=%d K=%d", r.Bound(), r.K())
	}
	h := r.Handle(0)
	if got := h.Read(); got != 0 {
		t.Fatalf("initial Read = %d", got)
	}
	h.Write(1000)
	x := r.Handle(1).Read()
	if x < 1000 || x > 2000 {
		t.Fatalf("Read = %d, want in [1000, 2000]", x)
	}
	if _, err := NewBoundedMaxRegister(1, 1, 2); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := NewBoundedMaxRegister(1, 8, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestExactBoundedMaxRegister(t *testing.T) {
	r, err := NewExactBoundedMaxRegister(2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handle(0)
	h.Write(77)
	h.Write(33)
	if got := r.Handle(1).Read(); got != 77 {
		t.Fatalf("Read = %d, want 77", got)
	}
}

func TestUnboundedMaxRegisters(t *testing.T) {
	approx, err := NewMaxRegister(WithProcs(2), WithAccuracy(Multiplicative(4)))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewExactMaxRegister(2)
	if err != nil {
		t.Fatal(err)
	}
	ha, he := approx.Handle(0), exact.Handle(0)
	const v = uint64(123456789)
	ha.Write(v)
	he.Write(v)
	if got := exact.Handle(1).Read(); got != v {
		t.Fatalf("exact Read = %d, want %d", got, v)
	}
	x := approx.Handle(1).Read()
	if x < v/4 || x > v*4 {
		t.Fatalf("approx Read = %d, want within [v/4, 4v] of %d", x, v)
	}
}

func TestMaxRegisterConcurrent(t *testing.T) {
	const n = 8
	r, err := NewMaxRegister(WithProcs(n), WithAccuracy(Multiplicative(2)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := r.Handle(i)
			for j := 1; j <= 5000; j++ {
				h.Write(uint64(j * (i + 1)))
				if j%500 == 0 {
					h.Read()
				}
			}
		}(i)
	}
	wg.Wait()
	const max = 5000 * n
	x := r.Handle(0).Read()
	if x < max/2 || x > max*2 {
		t.Fatalf("final Read = %d, want within [%d, %d]", x, max/2, max*2)
	}
}

func TestMaxRegisterStepsCounted(t *testing.T) {
	r, err := NewBoundedMaxRegister(1, 1<<30, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handle(0)
	h.Write(5)
	h.Read()
	if h.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
	// The headline claim: ops on a 2^30-bounded 2-accurate register take
	// at most ceil(log2(log2(2^30)+2)) = 5 steps.
	steps := h.Steps()
	if steps > 10 {
		t.Fatalf("2 ops took %d steps, want <= 10 (double-log complexity)", steps)
	}
}

func TestAdditiveCounter(t *testing.T) {
	c, err := NewAdditiveCounter(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.K() != 40 {
		t.Fatalf("N=%d K=%d, want 4, 40", c.N(), c.K())
	}
	h := c.Handle(0)
	for i := 0; i < 1000; i++ {
		h.Inc()
	}
	x := h.Read()
	if x < 960 || x > 1040 {
		t.Fatalf("Read = %d, want within +-40 of 1000", x)
	}
	if h.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
	if _, err := NewAdditiveCounter(0, 4); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestAdditiveCounterConcurrent(t *testing.T) {
	const n = 8
	const k = 80
	const perProc = 10000
	c, err := NewAdditiveCounter(n, k)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(i)
			for j := 0; j < perProc; j++ {
				h.Inc()
			}
		}(i)
	}
	wg.Wait()
	x := c.Handle(0).Read()
	const v = n * perProc
	if x < v-k || x > v+k {
		t.Fatalf("Read = %d, want within +-%d of %d", x, k, v)
	}
}

// TestCompatBounds asserts that the legacy constructors, now thin wrappers
// over the spec surface, report the correct universal envelopes: additive
// counters carry their slack in the Add term, and exact objects report the
// zero envelope.
func TestCompatBounds(t *testing.T) {
	add, err := NewAdditiveCounter(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if b := add.Bounds(); b.Mult != 1 || b.Add != 40 || b.Buffer != 0 {
		t.Errorf("AdditiveCounter(4, 40).Bounds() = %+v, want {Mult:1 Add:40 Buffer:0}", b)
	}
	exact, err := NewExactCounter(4)
	if err != nil {
		t.Fatal(err)
	}
	if b := exact.Bounds(); b != ExactBounds() || !b.IsExact() {
		t.Errorf("ExactCounter.Bounds() = %+v, want the zero envelope %+v", b, ExactBounds())
	}
	mult, err := NewApproxCounter(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b := mult.Bounds(); b.Mult != 2 || b.Add != 0 || b.Buffer != 0 {
		t.Errorf("ApproxCounter(4, 2).Bounds() = %+v, want {Mult:2 Add:0 Buffer:0}", b)
	}
	sharded, err := NewShardedCounter(8, 4, Shards(4), Batch(8))
	if err != nil {
		t.Fatal(err)
	}
	if b := sharded.Bounds(); b.Mult != 4 || b.Add != 0 || b.Buffer != 7*8 {
		t.Errorf("ShardedCounter.Bounds() = %+v, want {Mult:4 Add:0 Buffer:56}", b)
	}
	bmr, err := NewBoundedMaxRegister(2, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b := bmr.Bounds(); b.Mult != 2 || b.Add != 0 || b.Buffer != 0 {
		t.Errorf("BoundedMaxRegister.Bounds() = %+v, want {Mult:2 Add:0 Buffer:0}", b)
	}
	emr, err := NewExactMaxRegister(2)
	if err != nil {
		t.Fatal(err)
	}
	if b := emr.Bounds(); !b.IsExact() {
		t.Errorf("ExactMaxRegister.Bounds() = %+v, want the zero envelope", b)
	}
}

// TestCompatDelegation spot-checks that the wrappers produce objects of
// the unified types with the specs the legacy parameters imply.
func TestCompatDelegation(t *testing.T) {
	c, err := NewShardedCounter(8, 4, Shards(2), Batch(16))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Spec()
	if s.Kind() != KindCounter || s.Procs() != 8 || s.Accuracy() != Multiplicative(4) ||
		s.Shards() != 2 || s.Batch() != 16 {
		t.Errorf("ShardedCounter spec = %v, want counter{procs: 8, multiplicative(4), shards: 2, batch: 16}", s)
	}
	r, err := NewExactBoundedMaxRegister(2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rs := r.Spec()
	if rs.Kind() != KindMaxRegister || rs.Bound() != 1024 || !rs.Accuracy().IsExact() {
		t.Errorf("ExactBoundedMaxRegister spec = %v, want max register{procs: 2, exact, bound: 1024}", rs)
	}
}
