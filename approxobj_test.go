package approxobj

import (
	"sync"
	"testing"
)

func TestCounterBasic(t *testing.T) {
	c, err := NewCounter(WithProcs(4), WithAccuracy(Multiplicative(2)))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.K() != 2 {
		t.Fatalf("N=%d K=%d, want 4, 2", c.N(), c.K())
	}
	h := c.Handle(0)
	if got := h.Read(); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Inc()
	}
	x := h.Read()
	if x < 50 || x > 200 {
		t.Fatalf("Read = %d after 100 incs, want within [50, 200] (k=2)", x)
	}
	if h.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
}

func TestCounterRejectsBadParams(t *testing.T) {
	if _, err := NewCounter(WithProcs(100), WithAccuracy(Multiplicative(2))); err == nil {
		t.Fatal("k=2 for n=100 accepted (needs k >= 10)")
	}
	if _, err := NewCounter(WithProcs(0), WithAccuracy(Multiplicative(2))); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewCounter(WithAccuracy(Multiplicative(1))); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestCounterConcurrent(t *testing.T) {
	const n = 8
	const perProc = 10000
	c, err := NewCounter(WithProcs(n), WithAccuracy(Multiplicative(3)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(i)
			for j := 0; j < perProc; j++ {
				h.Inc()
				if j%1000 == 0 {
					h.Read()
				}
			}
		}(i)
	}
	wg.Wait()
	x := c.Handle(0).Read()
	const v = n * perProc
	if x < v/3 || x > v*3 {
		t.Fatalf("final Read = %d, want within [%d, %d]", x, v/3, v*3)
	}
}

func TestExactCounter(t *testing.T) {
	c, err := NewCounter(WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 {
		t.Fatalf("N = %d, want 4", c.N())
	}
	h0, h1 := c.Handle(0), c.Handle(1)
	h0.Inc()
	h0.Inc()
	h1.Inc()
	if got := h1.Read(); got != 3 {
		t.Fatalf("Read = %d, want 3", got)
	}
	if h1.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
	if _, err := NewCounter(WithProcs(0)); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestExactCounterConcurrent(t *testing.T) {
	const n = 8
	const perProc = 20000
	c, err := NewCounter(WithProcs(n))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(i)
			for j := 0; j < perProc; j++ {
				h.Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := c.Handle(0).Read(); got != n*perProc {
		t.Fatalf("exact counter lost updates: Read = %d, want %d", got, n*perProc)
	}
}

func TestBoundedMaxRegister(t *testing.T) {
	r, err := NewMaxRegister(WithProcs(2), WithAccuracy(Multiplicative(2)), WithBound(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound() != 1<<20 || r.K() != 2 {
		t.Fatalf("Bound=%d K=%d", r.Bound(), r.K())
	}
	h := r.Handle(0)
	if got := h.Read(); got != 0 {
		t.Fatalf("initial Read = %d", got)
	}
	h.Write(1000)
	x := r.Handle(1).Read()
	if x < 1000 || x > 2000 {
		t.Fatalf("Read = %d, want in [1000, 2000]", x)
	}
	if _, err := NewMaxRegister(WithProcs(1), WithAccuracy(Multiplicative(2)), WithBound(1)); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := NewMaxRegister(WithProcs(1), WithAccuracy(Multiplicative(1)), WithBound(8)); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestExactBoundedMaxRegister(t *testing.T) {
	r, err := NewMaxRegister(WithProcs(2), WithBound(1024))
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handle(0)
	h.Write(77)
	h.Write(33)
	if got := r.Handle(1).Read(); got != 77 {
		t.Fatalf("Read = %d, want 77", got)
	}
}

func TestUnboundedMaxRegisters(t *testing.T) {
	approx, err := NewMaxRegister(WithProcs(2), WithAccuracy(Multiplicative(4)))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewMaxRegister(WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	ha, he := approx.Handle(0), exact.Handle(0)
	const v = uint64(123456789)
	ha.Write(v)
	he.Write(v)
	if got := exact.Handle(1).Read(); got != v {
		t.Fatalf("exact Read = %d, want %d", got, v)
	}
	x := approx.Handle(1).Read()
	if x < v/4 || x > v*4 {
		t.Fatalf("approx Read = %d, want within [v/4, 4v] of %d", x, v)
	}
}

func TestMaxRegisterConcurrent(t *testing.T) {
	const n = 8
	r, err := NewMaxRegister(WithProcs(n), WithAccuracy(Multiplicative(2)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := r.Handle(i)
			for j := 1; j <= 5000; j++ {
				h.Write(uint64(j * (i + 1)))
				if j%500 == 0 {
					h.Read()
				}
			}
		}(i)
	}
	wg.Wait()
	const max = 5000 * n
	x := r.Handle(0).Read()
	if x < max/2 || x > max*2 {
		t.Fatalf("final Read = %d, want within [%d, %d]", x, max/2, max*2)
	}
}

func TestMaxRegisterStepsCounted(t *testing.T) {
	r, err := NewMaxRegister(WithProcs(1), WithAccuracy(Multiplicative(2)), WithBound(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handle(0)
	h.Write(5)
	h.Read()
	if h.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
	// The headline claim: ops on a 2^30-bounded 2-accurate register take
	// at most ceil(log2(log2(2^30)+2)) = 5 steps.
	steps := h.Steps()
	if steps > 10 {
		t.Fatalf("2 ops took %d steps, want <= 10 (double-log complexity)", steps)
	}
}

func TestAdditiveCounter(t *testing.T) {
	c, err := NewCounter(WithProcs(4), WithAccuracy(Additive(40)))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.K() != 40 {
		t.Fatalf("N=%d K=%d, want 4, 40", c.N(), c.K())
	}
	h := c.Handle(0)
	for i := 0; i < 1000; i++ {
		h.Inc()
	}
	x := h.Read()
	if x < 960 || x > 1040 {
		t.Fatalf("Read = %d, want within +-40 of 1000", x)
	}
	if h.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
	if _, err := NewCounter(WithProcs(0), WithAccuracy(Additive(4))); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestAdditiveCounterConcurrent(t *testing.T) {
	const n = 8
	const k = 80
	const perProc = 10000
	c, err := NewCounter(WithProcs(n), WithAccuracy(Additive(k)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(i)
			for j := 0; j < perProc; j++ {
				h.Inc()
			}
		}(i)
	}
	wg.Wait()
	x := c.Handle(0).Read()
	const v = n * perProc
	if x < v-k || x > v+k {
		t.Fatalf("Read = %d, want within +-%d of %d", x, k, v)
	}
}

// TestSpecBounds asserts that representative spec combinations report
// the correct universal envelopes: additive counters carry their slack
// in the Add term, and exact objects report the zero envelope.
func TestSpecBounds(t *testing.T) {
	add, err := NewCounter(WithProcs(4), WithAccuracy(Additive(40)))
	if err != nil {
		t.Fatal(err)
	}
	if b := add.Bounds(); b.Mult != 1 || b.Add != 40 || b.Buffer != 0 {
		t.Errorf("Additive(40) counter Bounds() = %+v, want {Mult:1 Add:40 Buffer:0}", b)
	}
	exact, err := NewCounter(WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if b := exact.Bounds(); b != ExactBounds() || !b.IsExact() {
		t.Errorf("exact counter Bounds() = %+v, want the zero envelope %+v", b, ExactBounds())
	}
	mult, err := NewCounter(WithProcs(4), WithAccuracy(Multiplicative(2)))
	if err != nil {
		t.Fatal(err)
	}
	if b := mult.Bounds(); b.Mult != 2 || b.Add != 0 || b.Buffer != 0 {
		t.Errorf("Multiplicative(2) counter Bounds() = %+v, want {Mult:2 Add:0 Buffer:0}", b)
	}
	sharded, err := NewCounter(WithProcs(8), WithAccuracy(Multiplicative(4)), WithShards(4), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	if b := sharded.Bounds(); b.Mult != 4 || b.Add != 0 || b.Buffer != 7*8 {
		t.Errorf("sharded counter Bounds() = %+v, want {Mult:4 Add:0 Buffer:56}", b)
	}
	bmr, err := NewMaxRegister(WithProcs(2), WithAccuracy(Multiplicative(2)), WithBound(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if b := bmr.Bounds(); b.Mult != 2 || b.Add != 0 || b.Buffer != 0 {
		t.Errorf("bounded max-register Bounds() = %+v, want {Mult:2 Add:0 Buffer:0}", b)
	}
	emr, err := NewMaxRegister(WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	if b := emr.Bounds(); !b.IsExact() {
		t.Errorf("exact max-register Bounds() = %+v, want the zero envelope", b)
	}
}

// TestSpecRoundTrip spot-checks that built objects report the specs
// their options imply.
func TestSpecRoundTrip(t *testing.T) {
	c, err := NewCounter(WithProcs(8), WithAccuracy(Multiplicative(4)), WithShards(2), WithBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Spec()
	if s.Kind() != KindCounter || s.Procs() != 8 || s.Accuracy() != Multiplicative(4) ||
		s.Shards() != 2 || s.Batch() != 16 {
		t.Errorf("sharded counter spec = %v, want counter{procs: 8, multiplicative(4), shards: 2, batch: 16}", s)
	}
	r, err := NewMaxRegister(WithProcs(2), WithBound(1024))
	if err != nil {
		t.Fatal(err)
	}
	rs := r.Spec()
	if rs.Kind() != KindMaxRegister || rs.Bound() != 1024 || !rs.Accuracy().IsExact() {
		t.Errorf("bounded exact max-register spec = %v, want max register{procs: 2, exact, bound: 1024}", rs)
	}
}
