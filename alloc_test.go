package approxobj_test

import (
	"testing"
	"time"

	"approxobj"
)

// The zero-allocation read path is a designed property of the plane
// (PR 9), not an accident of the current compiler: cached scalar reads
// are one atomic load, uncached scalar reads fold the shards in
// registers, and the vector kinds reuse handle-local scratch. These
// tests gate it exactly with testing.AllocsPerRun, machine-
// independently — the E20r bench records the same numbers into the
// -json trajectory, but a unit test fails faster and under -race too.
//
// The cached cells use an hour of staleness so the combiner goroutine
// never refreshes mid-measurement (the warm-up read pays the one
// inline refresh); allocations by OTHER goroutines would otherwise
// land in the per-run count.

// requireZeroAllocs runs f through testing.AllocsPerRun and fails if
// any run allocated.
func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s: %.2f allocs per read, want 0", name, avg)
	}
}

func TestReadPathAllocationFree(t *testing.T) {
	const shards = 4
	for _, cached := range []bool{false, true} {
		label := "uncached"
		opts := []approxobj.Option{approxobj.WithProcs(2), approxobj.WithShards(shards)}
		if cached {
			label = "cached"
			opts = append(opts, approxobj.WithReadCache(time.Hour))
		}

		t.Run("counter/"+label, func(t *testing.T) {
			c, err := approxobj.NewCounter(append(opts, approxobj.WithAccuracy(approxobj.Multiplicative(2)))...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			w, r := c.Handle(0), c.Handle(1)
			for i := 0; i < 1000; i++ {
				w.Inc()
			}
			var sink uint64
			sink += r.Read() // warm-up: cached cells refresh inline once
			requireZeroAllocs(t, "counter Read", func() { sink += r.Read() })
			if sink == ^uint64(0) {
				t.Fatal("impossible sink")
			}
		})

		t.Run("max-register/"+label, func(t *testing.T) {
			m, err := approxobj.NewMaxRegister(append(opts, approxobj.WithBound(1<<20))...)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			w, r := m.Handle(0), m.Handle(1)
			for i := 0; i < 1000; i++ {
				w.Write(uint64(i))
			}
			var sink uint64
			sink += r.Read()
			requireZeroAllocs(t, "max-register Read", func() { sink += r.Read() })
			if sink == ^uint64(0) {
				t.Fatal("impossible sink")
			}
		})

		t.Run("snapshot/"+label, func(t *testing.T) {
			sn, err := approxobj.NewSnapshot(opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer sn.Close()
			w, r := sn.Handle(0), sn.Handle(1)
			for i := 1; i <= 1000; i++ {
				w.Update(uint64(i))
			}
			var buf []uint64
			buf = r.ScanInto(buf) // warm-up grows the scratch once
			requireZeroAllocs(t, "snapshot ScanInto", func() { buf = r.ScanInto(buf) })
			if buf[0] != 1000 {
				t.Fatalf("component 0 = %d, want 1000", buf[0])
			}
		})

		t.Run("histogram/"+label, func(t *testing.T) {
			hg, err := approxobj.NewHistogram(append(opts,
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithBound(1<<16))...)
			if err != nil {
				t.Fatal(err)
			}
			defer hg.Close()
			w, r := hg.Handle(0), hg.Handle(1)
			for i := 0; i < 1000; i++ {
				w.Observe(uint64(i))
			}
			var sink uint64
			sink += r.Quantile(0.99)
			requireZeroAllocs(t, "histogram Quantile", func() { sink += r.Quantile(0.99) })
			requireZeroAllocs(t, "histogram Count", func() { sink += r.Count() })
			if sink == ^uint64(0) {
				t.Fatal("impossible sink")
			}
		})
	}
}

// TestTelemetryDisabledZeroCost pins the self-instrumentation
// contract (PR 10) exactly: an object built WITHOUT WithTelemetry pays
// nothing for the instrumentation points threaded through its runtime
// — zero allocations per write and per read, and step counts identical
// to an instrumented twin driven through the same operation sequence
// (telemetry counts events in its own striped atomics, never through
// the objects' base-object primitives). The instrumented twin's hot
// paths must stay allocation-free too: striped counter bumps and
// handle-local accumulators are arithmetic, not allocation.
func TestTelemetryDisabledZeroCost(t *testing.T) {
	const ops = 2000
	tel := approxobj.NewTelemetry()
	build := func(dom *approxobj.Telemetry) (*approxobj.Counter, *approxobj.Histogram) {
		opts := []approxobj.Option{
			approxobj.WithProcs(2),
			approxobj.WithAccuracy(approxobj.Multiplicative(2)),
			approxobj.WithShards(2),
			approxobj.WithBatch(4),
		}
		if dom != nil {
			opts = append(opts, approxobj.WithTelemetry(dom))
		}
		c, err := approxobj.NewCounter(opts...)
		if err != nil {
			t.Fatal(err)
		}
		hg, err := approxobj.NewHistogram(append(opts, approxobj.WithBound(1<<12))...)
		if err != nil {
			t.Fatal(err)
		}
		return c, hg
	}
	plainC, plainH := build(nil)
	defer plainC.Close()
	defer plainH.Close()
	instrC, instrH := build(tel)
	defer instrC.Close()
	defer instrH.Close()

	// Identical sequences through slot 0 of each twin; reads through
	// slot 1.
	drive := func(c *approxobj.Counter, hg *approxobj.Histogram) (cw, cr approxobj.CounterHandle, hw, hr approxobj.HistogramHandle) {
		cw, cr = c.Handle(0), c.Handle(1)
		hw, hr = hg.Handle(0), hg.Handle(1)
		var sink uint64
		for i := 0; i < ops; i++ {
			cw.Inc()
			hw.Observe(uint64(i) % (1 << 12))
			if i%64 == 0 {
				sink += cr.Read()
				sink += hr.Quantile(0.5)
			}
		}
		if sink == ^uint64(0) {
			t.Fatal("impossible sink")
		}
		return cw, cr, hw, hr
	}
	pcw, pcr, phw, phr := drive(plainC, plainH)
	icw, icr, ihw, ihr := drive(instrC, instrH)

	// The step counts must be IDENTICAL, not merely close: telemetry is
	// invisible to the step-counting primitive layer.
	if pcw.Steps() != icw.Steps() || pcr.Steps() != icr.Steps() {
		t.Errorf("counter steps diverge with telemetry: writer %d vs %d, reader %d vs %d",
			pcw.Steps(), icw.Steps(), pcr.Steps(), icr.Steps())
	}
	if phw.Steps() != ihw.Steps() || phr.Steps() != ihr.Steps() {
		t.Errorf("histogram steps diverge with telemetry: writer %d vs %d, reader %d vs %d",
			phw.Steps(), ihw.Steps(), phr.Steps(), ihr.Steps())
	}

	var sink uint64
	requireZeroAllocs(t, "disabled counter Inc", func() { pcw.Inc() })
	requireZeroAllocs(t, "disabled counter Read", func() { sink += pcr.Read() })
	requireZeroAllocs(t, "disabled histogram Observe", func() { phw.Observe(7) })
	requireZeroAllocs(t, "disabled histogram Quantile", func() { sink += phr.Quantile(0.99) })
	requireZeroAllocs(t, "enabled counter Inc", func() { icw.Inc() })
	requireZeroAllocs(t, "enabled counter Read", func() { sink += icr.Read() })
	requireZeroAllocs(t, "enabled histogram Observe", func() { ihw.Observe(7) })
	requireZeroAllocs(t, "enabled histogram Quantile", func() { sink += ihr.Quantile(0.99) })
	if sink == ^uint64(0) {
		t.Fatal("impossible sink")
	}
}

// TestPooledAcquireAllocations pins the acquisition hot path's
// allocation budget: after the first lease builds the slot's handle,
// each acquire/release cycle allocates only the release closure (the
// idempotence guard rides the slot's generation counter, not a fresh
// escaping atomic).
func TestPooledAcquireAllocations(t *testing.T) {
	c, err := approxobj.NewCounter(approxobj.WithProcs(2), approxobj.WithAccuracy(approxobj.Multiplicative(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Do(func(h approxobj.CounterHandle) { h.Inc() }) // warm the slot's cached handle
	if avg := testing.AllocsPerRun(100, func() {
		h, release := c.Acquire()
		h.Inc()
		release()
	}); avg > 1 {
		t.Errorf("acquire/release cycle: %.2f allocs, want <= 1 (the release closure)", avg)
	}
}
