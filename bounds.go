package approxobj

import "approxobj/internal/object"

// Bounds is the universal accuracy envelope: every object in the package,
// exact ones included, reports one. Against a true value v, a read may
// return any x with
//
//	(v - Buffer)/Mult - Add <= x <= Mult*v + Add.
//
// Mult is the multiplicative factor (k for Multiplicative(k) objects, 1
// otherwise), Add the additive slack (S*k for a counter with Additive(k)
// accuracy sharded S ways, 0 otherwise), and Buffer the maximum number of
// increments parked in handle-local batch buffers system-wide ((B-1)*n
// for WithBatch(B) counters, 0 otherwise). Exact objects report the zero
// envelope {Mult: 1, Add: 0, Buffer: 0}.
//
// Stale is the read-cache staleness window of WithReadCache (0 when the
// cache is off): a cached read serves a pre-combined value whose
// underlying combined read started at most Stale earlier, so the
// envelope holds against some true value in the regularity window
// opened Stale before the read began. It is a time-domain term — it
// widens the window checkers evaluate ContainsRange over, not the
// arithmetic of the envelope itself; see the read-plane table in Kinds
// for the per-kind reading. Window is the analogous epoch-truncation
// skew of WithWindow objects: reads cover at least the last d - Window
// and at most the last d of mutations.
//
// Delta is the envelope's failure probability, 0 for every
// deterministic accuracy (Exact, Additive, Multiplicative) and the
// configured delta for Randomized(k, delta) objects: each read of a
// randomized object satisfies the numeric envelope only with
// probability >= 1-Delta, taken over the object's internal coin flips.
// This is the determinism contrast the paper builds on (§I-A): its
// k-multiplicative objects are in range on every read of every
// schedule, where Morris-style randomized counters buy smaller state by
// letting a delta fraction of reads miss. Holds() returns 1-Delta, and
// IsExact reports false whenever Delta is nonzero — a randomized read
// is never exact, whatever its numeric terms.
//
// Contains and ContainsRange evaluate membership; the latter checks a
// response against the regularity window of a concurrent read (see
// internal/shard's package comment). The conformance tests in this
// package sweep every spec combination and assert observed reads against
// the reported envelope.
type Bounds = object.Bounds

// ExactBounds is the zero envelope reported by exact objects.
func ExactBounds() Bounds { return object.ExactBounds() }
