package approxobj

import (
	"strings"
	"testing"
	"time"
)

// TestSpecValidation exercises the single validation point: every option
// combination that used to be rejected by one of five constructors (or
// silently accepted) is accepted or rejected here, with the reason in the
// error.
func TestSpecValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		kind    Kind
		opts    []Option
		wantErr string // substring; "" means the spec must be valid
	}{
		{"counter defaults", KindCounter, nil, ""},
		{"counter exact sharded batched", KindCounter,
			[]Option{WithProcs(8), WithShards(4), WithBatch(16)}, ""},
		{"counter additive", KindCounter,
			[]Option{WithProcs(8), WithAccuracy(Additive(64))}, ""},
		{"counter mult ok", KindCounter,
			[]Option{WithProcs(8), WithAccuracy(Multiplicative(3))}, ""},
		{"counter mult huge k does not overflow", KindCounter,
			[]Option{WithProcs(4), WithAccuracy(Multiplicative(1 << 32))}, ""},
		{"counter zero procs", KindCounter,
			[]Option{WithProcs(0)}, "process slot"},
		{"counter mult k too small for n", KindCounter,
			[]Option{WithProcs(100), WithAccuracy(Multiplicative(2))}, "sqrt"},
		{"counter mult k < 2", KindCounter,
			[]Option{WithAccuracy(Multiplicative(1))}, "k >= 2"},
		// The randomized accuracy row: counters only, k and delta both
		// validated in the accuracy table (no per-kind switch).
		{"counter randomized", KindCounter,
			[]Option{WithProcs(4), WithAccuracy(Randomized(2, 0.01))}, ""},
		{"counter randomized sharded batched", KindCounter,
			[]Option{WithProcs(8), WithAccuracy(Randomized(4, 0.1)), WithShards(4), WithBatch(16)}, ""},
		{"counter randomized windowed", KindCounter,
			[]Option{WithProcs(4), WithAccuracy(Randomized(2, 0.05)), WithWindow(time.Minute, 6)}, ""},
		{"counter randomized k < 2", KindCounter,
			[]Option{WithAccuracy(Randomized(1, 0.01))}, "k >= 2"},
		{"counter randomized delta zero", KindCounter,
			[]Option{WithAccuracy(Randomized(2, 0))}, "0 < delta < 1"},
		{"counter randomized delta one", KindCounter,
			[]Option{WithAccuracy(Randomized(2, 1))}, "0 < delta < 1"},
		{"counter randomized delta negative", KindCounter,
			[]Option{WithAccuracy(Randomized(2, -0.5))}, "0 < delta < 1"},
		{"maxreg randomized", KindMaxRegister,
			[]Option{WithAccuracy(Randomized(2, 0.01))}, "not implemented for max registers"},
		{"snapshot randomized", KindSnapshot,
			[]Option{WithAccuracy(Randomized(2, 0.01))}, "not implemented for snapshots"},
		{"histogram randomized", KindHistogram,
			[]Option{WithAccuracy(Randomized(2, 0.01)), WithBound(1024)}, "not implemented for histograms"},
		{"counter zero shards", KindCounter,
			[]Option{WithShards(0)}, "shard count"},
		{"counter zero batch", KindCounter,
			[]Option{WithBatch(0)}, "batch size"},
		{"counter with bound", KindCounter,
			[]Option{WithBound(1024)}, "WithBound"},
		{"maxreg defaults", KindMaxRegister, nil, ""},
		{"maxreg bounded exact", KindMaxRegister,
			[]Option{WithProcs(4), WithBound(1024)}, ""},
		{"maxreg bounded mult", KindMaxRegister,
			[]Option{WithProcs(4), WithAccuracy(Multiplicative(2)), WithBound(1 << 20)}, ""},
		{"maxreg unbounded mult", KindMaxRegister,
			[]Option{WithProcs(4), WithAccuracy(Multiplicative(2))}, ""},
		{"maxreg bound too small", KindMaxRegister,
			[]Option{WithBound(1)}, "bound must be >= 2"},
		{"maxreg mult k < 2", KindMaxRegister,
			[]Option{WithAccuracy(Multiplicative(1))}, "k >= 2"},
		{"maxreg additive", KindMaxRegister,
			[]Option{WithAccuracy(Additive(8))}, "not implemented for max registers"},
		// Since the unified sharded runtime, WithShards and WithBatch are
		// valid for max registers too.
		{"maxreg sharded", KindMaxRegister,
			[]Option{WithProcs(4), WithShards(4)}, ""},
		{"maxreg batched", KindMaxRegister,
			[]Option{WithProcs(4), WithBatch(8)}, ""},
		{"maxreg sharded batched bounded mult", KindMaxRegister,
			[]Option{WithProcs(4), WithAccuracy(Multiplicative(2)), WithBound(1 << 20), WithShards(2), WithBatch(16)}, ""},
		{"maxreg zero shards", KindMaxRegister,
			[]Option{WithShards(0)}, "shard count"},
		{"maxreg zero batch", KindMaxRegister,
			[]Option{WithBatch(0)}, "batch size"},
		{"maxreg batch swallows bound", KindMaxRegister,
			[]Option{WithBound(16), WithBatch(16)}, "exceeds"}, // B = m already covers every legal write (v <= m-1)
		{"maxreg batch at bound edge", KindMaxRegister,
			[]Option{WithBound(16), WithBatch(15)}, ""},
		// The snapshot family validates through the same backend table.
		{"snapshot defaults", KindSnapshot, nil, ""},
		{"snapshot sharded batched", KindSnapshot,
			[]Option{WithProcs(6), WithShards(3), WithBatch(16)}, ""},
		{"snapshot zero procs", KindSnapshot,
			[]Option{WithProcs(0)}, "process slot"},
		{"snapshot zero shards", KindSnapshot,
			[]Option{WithShards(0)}, "shard count"},
		{"snapshot zero batch", KindSnapshot,
			[]Option{WithBatch(0)}, "batch size"},
		{"snapshot multiplicative", KindSnapshot,
			[]Option{WithAccuracy(Multiplicative(4))}, "not implemented for snapshots"},
		{"snapshot additive", KindSnapshot,
			[]Option{WithAccuracy(Additive(8))}, "not implemented for snapshots"},
		{"snapshot with bound", KindSnapshot,
			[]Option{WithBound(1024)}, "WithBound"},
		// The histogram family validates through the same backend table.
		{"histogram mult unbounded", KindHistogram,
			[]Option{WithProcs(4), WithAccuracy(Multiplicative(2))}, ""},
		{"histogram mult bounded sharded batched", KindHistogram,
			[]Option{WithProcs(6), WithAccuracy(Multiplicative(4)), WithBound(1 << 16), WithShards(3), WithBatch(32)}, ""},
		{"histogram exact bounded", KindHistogram,
			[]Option{WithProcs(2), WithBound(1024)}, ""},
		{"histogram exact needs bound", KindHistogram,
			[]Option{WithProcs(2)}, "needs WithBound"},
		{"histogram exact bound too large", KindHistogram,
			[]Option{WithBound(1 << 21)}, "table limit"},
		{"histogram mult k < 2", KindHistogram,
			[]Option{WithAccuracy(Multiplicative(1))}, "k >= 2"},
		{"histogram additive", KindHistogram,
			[]Option{WithAccuracy(Additive(8))}, "not implemented for histograms"},
		// The observation buffer is a count, not a value window: a batch
		// at or past the bound is fine for histograms (unlike registers).
		{"histogram batch past bound", KindHistogram,
			[]Option{WithAccuracy(Multiplicative(2)), WithBound(16), WithBatch(64)}, ""},
		{"histogram zero shards", KindHistogram,
			[]Option{WithAccuracy(Multiplicative(2)), WithShards(0)}, "shard count"},
		{"histogram zero batch", KindHistogram,
			[]Option{WithAccuracy(Multiplicative(2)), WithBatch(0)}, "batch size"},
		// Windowed objects (WithWindow) validate through the same single
		// point: d must be positive and the ring needs >= 2 epochs.
		{"counter windowed", KindCounter,
			[]Option{WithProcs(4), WithWindow(time.Minute, 6)}, ""},
		{"counter windowed sharded batched cached", KindCounter,
			[]Option{WithProcs(4), WithShards(2), WithBatch(8), WithReadCache(time.Millisecond), WithWindow(time.Minute, 6)}, ""},
		{"maxreg windowed", KindMaxRegister,
			[]Option{WithProcs(4), WithWindow(time.Second, 2)}, ""},
		{"snapshot windowed", KindSnapshot,
			[]Option{WithProcs(4), WithWindow(time.Hour, 12)}, ""},
		{"histogram windowed", KindHistogram,
			[]Option{WithProcs(4), WithAccuracy(Multiplicative(2)), WithWindow(time.Minute, 6)}, ""},
		{"window zero duration", KindCounter,
			[]Option{WithWindow(0, 6)}, "window duration must be > 0"},
		{"window negative duration", KindCounter,
			[]Option{WithWindow(-time.Second, 6)}, "window duration must be > 0"},
		{"window one epoch", KindCounter,
			[]Option{WithWindow(time.Minute, 1)}, "at least 2 epochs"},
		{"window zero epochs", KindCounter,
			[]Option{WithWindow(time.Minute, 0)}, "at least 2 epochs"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			switch tc.kind {
			case KindCounter:
				_, err = NewCounter(tc.opts...)
			case KindMaxRegister:
				_, err = NewMaxRegister(tc.opts...)
			case KindHistogram:
				_, err = NewHistogram(tc.opts...)
			default:
				_, err = NewSnapshot(tc.opts...)
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestSpecAccessors checks the spec round-trip: what the options say is
// what the built object reports.
func TestSpecAccessors(t *testing.T) {
	c, err := NewCounter(
		WithProcs(8),
		WithAccuracy(Multiplicative(4)),
		WithShards(2),
		WithBatch(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Spec()
	if s.Kind() != KindCounter || s.Procs() != 8 || s.Shards() != 2 || s.Batch() != 16 ||
		s.Bound() != 0 || s.Accuracy() != Multiplicative(4) {
		t.Errorf("spec = %v, want counter{procs: 8, multiplicative(4), shards: 2, batch: 16}", s)
	}
	if c.N() != 8 || c.K() != 4 || c.Shards() != 2 || c.Batch() != 16 {
		t.Errorf("accessors N=%d K=%d S=%d B=%d, want 8 4 2 16", c.N(), c.K(), c.Shards(), c.Batch())
	}
	if got := s.String(); got != "counter{procs: 8, multiplicative(4), shards: 2, batch: 16}" {
		t.Errorf("String() = %q", got)
	}

	r, err := NewMaxRegister(WithProcs(2), WithBound(1024))
	if err != nil {
		t.Fatal(err)
	}
	rs := r.Spec()
	if rs.Kind() != KindMaxRegister || rs.Procs() != 2 || rs.Bound() != 1024 || !rs.Accuracy().IsExact() {
		t.Errorf("spec = %v, want max register{procs: 2, exact, bound: 1024}", rs)
	}
	if got := rs.String(); got != "max register{procs: 2, exact, bound: 1024}" {
		t.Errorf("String() = %q", got)
	}

	sr, err := NewMaxRegister(
		WithProcs(4),
		WithAccuracy(Multiplicative(2)),
		WithShards(2),
		WithBatch(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sr.N() != 4 || sr.K() != 2 || sr.Shards() != 2 || sr.Batch() != 8 {
		t.Errorf("accessors N=%d K=%d S=%d B=%d, want 4 2 2 8", sr.N(), sr.K(), sr.Shards(), sr.Batch())
	}
	if got, want := sr.Bounds(), (Bounds{Mult: 2, Buffer: 7}); got != want {
		t.Errorf("sharded maxreg Bounds = %+v, want %+v", got, want)
	}
	if got := sr.Spec().String(); got != "max register{procs: 4, multiplicative(2), shards: 2, batch: 8}" {
		t.Errorf("String() = %q", got)
	}

	sn, err := NewSnapshot(WithProcs(4), WithShards(2), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	if sn.N() != 4 || sn.Components() != 4 || sn.Shards() != 2 || sn.Batch() != 8 {
		t.Errorf("accessors N=%d C=%d S=%d B=%d, want 4 4 2 8", sn.N(), sn.Components(), sn.Shards(), sn.Batch())
	}
	if got, want := sn.Bounds(), (Bounds{Mult: 1, Buffer: 7}); got != want {
		t.Errorf("sharded snapshot Bounds = %+v, want %+v", got, want)
	}
	if got := sn.Spec().String(); got != "snapshot{procs: 4, exact, shards: 2, batch: 8}" {
		t.Errorf("String() = %q", got)
	}

	hg, err := NewHistogram(
		WithProcs(4),
		WithAccuracy(Multiplicative(2)),
		WithBound(1<<16),
		WithShards(2),
		WithBatch(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	if hg.N() != 4 || hg.K() != 2 || hg.Shards() != 2 || hg.Batch() != 8 || hg.Bound() != 1<<16 {
		t.Errorf("accessors N=%d K=%d S=%d B=%d m=%d, want 4 2 2 8 65536",
			hg.N(), hg.K(), hg.Shards(), hg.Batch(), hg.Bound())
	}
	if hg.Buckets() != 17 { // {0}, [1,1], [2,3], ..., [2^15, 2^16-1]
		t.Errorf("Buckets = %d, want 17 for k=2 over [0, 2^16)", hg.Buckets())
	}
	if got, want := hg.Bounds(), (Bounds{Mult: 2, Buffer: 28}); got != want {
		t.Errorf("histogram Bounds = %+v, want %+v (Buffer = (B-1)*n)", got, want)
	}
	if got := hg.Spec().String(); got != "histogram{procs: 4, multiplicative(2), shards: 2, batch: 8, bound: 65536}" {
		t.Errorf("String() = %q", got)
	}

	wc, err := NewCounter(WithProcs(4), WithWindow(time.Minute, 6))
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	ws := wc.Spec()
	if !ws.Windowed() {
		t.Error("Windowed() = false for a WithWindow spec")
	}
	if d, n := ws.Window(); d != time.Minute || n != 6 {
		t.Errorf("Window() = (%v, %d), want (1m0s, 6)", d, n)
	}
	if got := ws.String(); got != "counter{procs: 4, exact, shards: 1, batch: 1, window: 1m0s/6}" {
		t.Errorf("String() = %q", got)
	}
	if cs := (Spec{}); cs.Windowed() {
		t.Error("zero spec reports Windowed()")
	}
}

// TestKindTextRoundTrip pins the symmetric text encoding of kinds: every
// kind registered in the backend table must survive MarshalText →
// UnmarshalText unchanged (so registry names and bench records can parse
// kinds back), and unknown names must fail with the registered kinds in
// the error.
func TestKindTextRoundTrip(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 4 {
		t.Fatalf("backend table registers %d kinds, want 4", len(kinds))
	}
	for _, kp := range kinds {
		text, err := kp.Kind.MarshalText()
		if err != nil {
			t.Fatalf("%v: MarshalText: %v", kp.Kind, err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != kp.Kind {
			t.Errorf("round trip %v -> %q -> %v", kp.Kind, text, back)
		}
		parsed, err := ParseKind(string(text))
		if err != nil || parsed != kp.Kind {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", text, parsed, err, kp.Kind)
		}
	}
	var k Kind
	err := k.UnmarshalText([]byte("bloom filter"))
	if err == nil {
		t.Fatal("UnmarshalText accepted an unknown kind name")
	}
	for _, name := range []string{"counter", "max register", "snapshot", "histogram"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-kind error %q does not list registered kind %q", err, name)
		}
	}
	if Kind(99).String() != "invalid" {
		t.Errorf("unregistered Kind String() = %q, want \"invalid\"", Kind(99).String())
	}
}

// TestKindPolicyTable pins the policy-table rows the README documents:
// each kind's combine/buffer names and a declared bench scenario.
func TestKindPolicyTable(t *testing.T) {
	want := map[Kind][2]string{
		KindCounter:     {"sum", "count batching"},
		KindMaxRegister: {"max", "write elision"},
		KindSnapshot:    {"per-component", "component elision"},
		KindHistogram:   {"per-bucket sum", "bucket batching"},
	}
	for _, kp := range Kinds() {
		w, ok := want[kp.Kind]
		if !ok {
			t.Errorf("unexpected kind %v in the table", kp.Kind)
			continue
		}
		if kp.Combine != w[0] || kp.Buffer != w[1] {
			t.Errorf("%v policy = (%q, %q), want (%q, %q)", kp.Kind, kp.Combine, kp.Buffer, w[0], w[1])
		}
		if kp.BenchScenario == "" {
			t.Errorf("%v declares no bench scenario", kp.Kind)
		}
		if kp.Envelope == "" {
			t.Errorf("%v declares no envelope description", kp.Kind)
		}
	}
}

// TestAccuracyK pins the accuracy parameter semantics the compat wrappers
// and Bounds rely on.
func TestAccuracyK(t *testing.T) {
	if Exact().K() != 1 || !Exact().IsExact() {
		t.Error("Exact() must report K=1")
	}
	if Additive(40).K() != 40 || Additive(40).IsExact() {
		t.Error("Additive(40) must report K=40")
	}
	if Multiplicative(4).K() != 4 || Multiplicative(4).IsExact() {
		t.Error("Multiplicative(4) must report K=4")
	}
	r := Randomized(4, 0.01)
	if r.K() != 4 || r.Delta() != 0.01 || r.IsExact() {
		t.Error("Randomized(4, 0.01) must report K=4, Delta=0.01, not exact")
	}
	if Multiplicative(4).Delta() != 0 {
		t.Error("deterministic accuracies must report Delta=0")
	}
	if got := r.String(); got != "randomized(4, 0.01)" {
		t.Errorf("Randomized String() = %q", got)
	}
	var zero Accuracy
	if !zero.IsExact() || zero.K() != 1 {
		t.Error("zero Accuracy must behave as Exact()")
	}
}
