package approxobj

import (
	"sync"
	"testing"
)

func TestShardedCounterBasic(t *testing.T) {
	c, err := NewCounter(WithProcs(8), WithAccuracy(Multiplicative(4)), WithShards(4), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 8 || c.K() != 4 || c.Shards() != 4 || c.Batch() != 8 {
		t.Fatalf("N=%d K=%d S=%d B=%d, want 8, 4, 4, 8", c.N(), c.K(), c.Shards(), c.Batch())
	}
	b := c.Bounds()
	if b.Mult != 4 || b.Add != 0 || b.Buffer != 7*8 {
		t.Fatalf("Bounds = %+v, want {4 0 56}", b)
	}
	h := c.Handle(0)
	if got := h.Read(); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	for i := 0; i < 1000; i++ {
		h.Inc()
	}
	bh, ok := h.(BatchedCounterHandle)
	if !ok {
		t.Fatal("sharded handle does not implement BatchedCounterHandle")
	}
	bh.Flush()
	x := h.Read()
	if x < 250 || x > 4000 {
		t.Fatalf("Read = %d after 1000 incs, want within [250, 4000] (k=4)", x)
	}
	if h.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
}

func TestShardedCounterRejectsBadParams(t *testing.T) {
	if _, err := NewCounter(WithProcs(100), WithAccuracy(Multiplicative(2))); err == nil {
		t.Fatal("k=2 for n=100 accepted (needs k >= 10 per shard)")
	}
	if _, err := NewCounter(WithProcs(4), WithAccuracy(Multiplicative(2)), WithShards(0)); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewCounter(WithProcs(4), WithAccuracy(Multiplicative(2)), WithBatch(0)); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	const n = 8
	const perProc = 10000
	c, err := NewCounter(WithProcs(n), WithAccuracy(Multiplicative(3)), WithShards(4), WithBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]CounterHandle, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		h := c.Handle(i)
		handles[i] = h
		go func() {
			defer wg.Done()
			for j := 0; j < perProc; j++ {
				h.Inc()
				if j%1000 == 0 {
					h.Read()
				}
			}
		}()
	}
	wg.Wait()
	for _, h := range handles {
		h.(BatchedCounterHandle).Flush()
	}
	const v = n * perProc
	got := handles[0].Read()
	if got < v/3 || got > v*3 {
		t.Fatalf("Read = %d after %d incs, want within [%d, %d] (k=3)", got, v, v/3, v*3)
	}
}
