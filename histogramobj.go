package approxobj

import (
	"fmt"

	"approxobj/internal/histogram"
	"approxobj/internal/shard"
)

// This file is the fourth object family on the backend plane — the
// approximate histogram — and the first whose read side is a query
// engine rather than a scalar: Quantile, Rank, CDF, Count and Sum over
// rounded buckets in the style of Matias, Vitter and Young's approximate
// data structures. Bucket boundaries are spaced by the multiplicative
// accuracy factor k, so a bucket index is computable without search and
// every recorded value is represented within a factor k; handle-local
// observation batching adds a rank-domain slack of at most B-1
// observations per handle. Like the other families, the kind is one
// table row plus one internal/shard registration.

// HistogramHandle is one process's view of a shared histogram: an
// observer (Observe/ObserveN) and a query engine over all observations.
// Every query folds one merged read of the bucket counts, so its answer
// is consistent within itself; distinct queries read independently. A
// handle is not safe for concurrent use; acquire one per goroutine.
//
// Deterministic error bounds, with k the accuracy factor, U the Buffer
// term of the object's Bounds (at most B-1 buffered observations per
// handle, (B-1)·n system-wide), N the true observation count, and A(x)
// the true number of observations with value <= x:
//
//	Count()     in [N-U, N]
//	Sum()       never overstates the true sum of the observations it
//	            counts and understates it by at most a factor k
//	Rank(v)     in [A(v)-U, A(v')] for some v' <= k·v (the top of v's
//	            bucket): exact up to U at a value within factor k of v
//	Quantile(q) returns x with x <= y < k·x (k = 1: x = y), where y is
//	            the value of rank ceil(q·Count()) among the counted
//	            observations
//	CDF(v)      = Rank(v)/Count() from one consistent read
//
// At quiescence, once every handle has flushed (releasing a pooled
// handle flushes), U = 0 and all slack is pure bucket rounding.
type HistogramHandle interface {
	// Observe records the value v. It panics if v is outside the
	// bounded domain [0, m) of WithBound(m), like indexing a slice out
	// of bounds.
	Observe(v uint64)
	// ObserveN records the value v, d times, linearizable as d
	// consecutive Observes by the same process.
	ObserveN(v uint64, d uint64)
	// Count returns the number of observations counted by one merged
	// read.
	Count() uint64
	// Sum returns the sum of the counted observations, each rounded
	// down to its bucket's lower boundary.
	Sum() uint64
	// Rank returns the number of counted observations with value at
	// most (the top of the bucket of) v.
	Rank(v uint64) uint64
	// Quantile returns the q-quantile (q in [0, 1]; 0 the minimum, 1
	// the maximum) of the counted observations, rounded down to its
	// bucket's lower boundary. It panics if q is outside [0, 1].
	Quantile(q float64) uint64
	// CDF returns the fraction of counted observations with value at
	// most (the top of the bucket of) v.
	CDF(v uint64) float64
	Steps() uint64
}

// BatchedHistogramHandle is a HistogramHandle whose observations may be
// buffered locally (see WithBatch); Flush publishes every pending
// bucket count. Every histogram handle implements it — Flush is a no-op
// when nothing is pending, and pooled handles flush automatically on
// release — so type assertions on it cannot fail for handles of this
// package's histograms.
type BatchedHistogramHandle interface {
	HistogramHandle
	Flush()
}

// histogramDescriptor registers the histogram family in the
// backend-plane table: reads sum the shards per bucket (no envelope
// widening — per-shard bucket counts are exact), and handles batch whole
// observations, so the B-1 staleness scales with the slot count like the
// counter's.
var histogramDescriptor = &kindDescriptor{
	kind:   KindHistogram,
	name:   "histogram",
	plural: "histograms",

	policy:   shard.HistogramPolicyRow(),
	envelope: "value error Mult = k from bucket rounding (independent of S); rank error Buffer = (B-1)·n",
	scenario: "E16",

	staleTerm:    "queries may miss observations of the last maxStale",
	readScenario: "E17",

	windowTerm:     "queries fold the observations of the last d (per-bucket sums across epochs; rounding k and rank slack unchanged; one epoch of edge skew)",
	windowScenario: "E18",

	accuracies: map[accMode]func(s Spec) error{
		accExact:          checkExactHistogram,
		accMultiplicative: nil, // k >= 2 is the generic multiplicative check
	},
	allowBound: true,
	build:      func(s Spec) (instance, error) { return newHistogram(s) },
}

// checkExactHistogram mirrors internal/histogram's layout preconditions
// at the spec level (defense in depth, like checkMultCounter): the exact
// bucket-per-value table needs a finite domain small enough to allocate.
func checkExactHistogram(s Spec) error {
	if !s.boundSet {
		return fmt.Errorf("approxobj: exact accuracy for histograms needs WithBound (the bucket-per-value table requires a finite value domain; use Multiplicative(k) for unbounded domains)")
	}
	if s.bound > histogram.MaxExactBuckets {
		return fmt.Errorf("approxobj: exact histogram bound %d exceeds the %d-bucket table limit (use Multiplicative(k) for large domains)", s.bound, histogram.MaxExactBuckets)
	}
	return nil
}

// Histogram is the approximate histogram family — rounded buckets with
// deterministic per-value multiplicative error, optionally sharded and
// with observation batching — built by NewHistogram from a spec. Like
// the other families it runs on the unified sharded runtime and reports
// its accuracy envelope via Bounds; unlike them its read side is a query
// engine (see HistogramHandle).
type Histogram struct {
	spec Spec
	bk   histogram.Buckets
	h    *shard.Histogram         // cumulative runtime, nil when windowed
	wh   *shard.WindowedHistogram // windowed runtime, nil when cumulative

	slots slotPool[*pooledHistogramHandle]

	snap    histRT   // registry snapshot handle (slot procs), else nil
	snapBuf []uint64 // snap's reused bucket read (serialized by the registry's per-entry snapMu)
}

// histRT is the runtime surface shared by the cumulative and windowed
// histogram backends; *shard.HistHandle and *shard.WHistHandle both
// satisfy it.
type histRT interface {
	AddN(bucket int, d uint64)
	Buckets() []uint64
	BucketsInto(dst []uint64) []uint64
	Steps() uint64
	Flush()
}

var _ instance = (*Histogram)(nil)

// NewHistogram builds the histogram the options describe. Defaults: one
// process slot, Exact() accuracy, unsharded, unbuffered — but note the
// exact bucket-per-value table requires WithBound(m), so the zero-option
// call is rejected; typical use selects WithAccuracy(Multiplicative(k))
// for rounded buckets over any domain. WithShards(S) spreads observation
// traffic over S shards whose per-bucket sums widen nothing;
// WithBatch(B) buffers up to B-1 observations per handle.
func NewHistogram(opts ...Option) (*Histogram, error) {
	spec, err := newSpec(KindHistogram, opts)
	if err != nil {
		return nil, err
	}
	return newHistogram(spec)
}

func newHistogram(spec Spec) (*Histogram, error) {
	bk, err := histogram.NewBuckets(spec.acc.K(), spec.bound)
	if err != nil {
		return nil, err
	}
	hopts := []shard.HistOption{shard.HistShards(spec.shards), shard.HistBatch(spec.batch)}
	if spec.readStale > 0 {
		hopts = append(hopts, shard.HistReadCache(spec.readStale))
	}
	if spec.tel != nil {
		hopts = append(hopts, shard.HistTelemetry(spec.tel.sink))
	}
	h := &Histogram{spec: spec, bk: bk}
	if spec.Windowed() {
		wh, err := shard.NewWindowedHistogram(spec.totalProcs(), spec.acc.K(), bk.N(), spec.windowDur, spec.windowEpochs, hopts...)
		if err != nil {
			return nil, err
		}
		h.wh = wh
	} else {
		sh, err := shard.NewHistogram(spec.totalProcs(), spec.acc.K(), bk.N(), hopts...)
		if err != nil {
			return nil, err
		}
		h.h = sh
	}
	h.slots.init(spec.procs, h.newPooledHandle)
	instrumentObject(spec, h.slots.free, h.BaseObjects)
	if spec.snapshotSlot {
		h.snap = h.runtimeHandle(spec.procs)
	}
	return h, nil
}

// runtimeHandle binds a slot on whichever runtime backs the histogram.
func (h *Histogram) runtimeHandle(i int) histRT {
	if h.wh != nil {
		return h.wh.Handle(i)
	}
	return h.h.Handle(i)
}

// Spec returns the validated spec the histogram was built from.
func (h *Histogram) Spec() Spec { return h.spec }

// N returns the number of process slots available to callers.
func (h *Histogram) N() int { return h.spec.procs }

// K returns the accuracy factor the bucket boundaries are spaced by (1
// for exact histograms).
func (h *Histogram) K() uint64 { return h.spec.acc.K() }

// Accuracy returns the accuracy selection.
func (h *Histogram) Accuracy() Accuracy { return h.spec.acc }

// Bound returns the value bound m (observations must be < m), or 0 for
// histograms over the full uint64 domain.
func (h *Histogram) Bound() uint64 { return h.spec.bound }

// Shards returns the shard count.
func (h *Histogram) Shards() int { return h.spec.shards }

// Batch returns the per-handle observation buffer (1 means every
// observation is published immediately).
func (h *Histogram) Batch() uint64 { return uint64(h.spec.batch) }

// Buckets returns the number of buckets the value domain rounds into.
func (h *Histogram) Buckets() int { return h.bk.N() }

// Bounds returns the histogram's accuracy envelope. Its two terms live
// in different domains: Mult = k bounds the value-domain rounding
// (every recorded value is represented by a bucket within factor k, so
// Quantile answers and Rank/CDF value arguments round by at most k),
// and Buffer = (B-1)·N bounds the rank-domain staleness (how many
// observations, system-wide, may be parked in handle-local buffers and
// invisible to queries). See HistogramHandle for the per-query bounds
// this envelope composes into. Unbatched exact histograms report the
// zero envelope. With WithReadCache the Stale term carries the
// staleness window: every query then folds a pre-combined bucket read
// whose regularity window opened at most Stale before the read began.
// With WithWindow(d, n) queries fold the observations of the live
// window (per-bucket sums across the epoch ring) and the Window term
// carries the one-epoch truncation skew d/n; rounding (Mult) and rank
// slack (Buffer) are unchanged — a handle's pending observations live
// in at most one epoch at a time.
func (h *Histogram) Bounds() Bounds {
	if h.wh != nil {
		return scaledBounds(h.wh.Bounds(), h.spec)
	}
	return scaledBounds(h.h.Bounds(), h.spec)
}

// BaseObjects returns the number of base objects (registers, TAS
// instances) the histogram has allocated across its shards — and, for
// windowed histograms, its live epoch ring: the histogram's space cost
// in the paper's model.
func (h *Histogram) BaseObjects() uint64 {
	if h.wh != nil {
		return h.wh.BaseObjects()
	}
	return h.h.BaseObjects()
}

// Close stops the histogram's background goroutines — the read cache's
// combiner when WithReadCache is set, and the epoch rotator when
// WithWindow is set (the window freezes; see Counter.Close).
// Idempotent, and a no-op otherwise; handles stay usable afterwards
// (cached bucket reads refresh inline).
func (h *Histogram) Close() {
	if h.wh != nil {
		h.wh.Close()
		return
	}
	h.h.Close()
}

// Reset replaces the whole window with fresh epochs — the distribution
// restarts empty. Only windowed histograms (WithWindow) support it; it
// is an error otherwise, and after Close.
func (h *Histogram) Reset() error {
	if h.wh == nil {
		return fmt.Errorf("approxobj: Reset needs a windowed histogram (WithWindow); this one is cumulative")
	}
	return h.wh.Reset()
}

// Snapshot freezes one consistent bucket read into a queryable
// HistogramSnapshot and, when reset is true, resets the window
// afterwards (see Counter.Snapshot for the two-step, non-atomic
// contract). Unlike handle queries, which each fold a fresh read, every
// query on the returned snapshot folds the same frozen counts.
func (h *Histogram) Snapshot(reset bool) (HistogramSnapshot, error) {
	ph, release := h.slots.acquire()
	counts := ph.h.Buckets()
	release()
	snap := HistogramSnapshot{bk: h.bk, counts: counts}
	if reset {
		return snap, h.Reset()
	}
	return snap, nil
}

// HistogramSnapshot is a frozen, queryable view of a histogram's bucket
// counts at one instant — the query surface of HistogramHandle over one
// consistent read instead of a fresh read per query. The zero value is
// an empty snapshot whose queries all return zero.
type HistogramSnapshot struct {
	bk     histogram.Buckets
	counts []uint64
}

// Count returns the number of observations in the snapshot.
func (s HistogramSnapshot) Count() uint64 { return histogram.Count(s.counts) }

// Sum returns the sum of the snapshot's observations, each rounded down
// to its bucket's lower boundary.
func (s HistogramSnapshot) Sum() uint64 { return histogram.Sum(s.bk, s.counts) }

// Rank returns the number of observations with value at most (the top
// of the bucket of) v.
func (s HistogramSnapshot) Rank(v uint64) uint64 { return histogram.Rank(s.bk, s.counts, v) }

// Quantile returns the q-quantile of the snapshot (see
// HistogramHandle.Quantile); it panics if q is outside [0, 1].
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	return histogram.Quantile(s.bk, s.counts, q)
}

// CDF returns the fraction of observations with value at most (the top
// of the bucket of) v.
func (s HistogramSnapshot) CDF(v uint64) float64 { return histogram.CDF(s.bk, s.counts, v) }

// Handle binds process slot i (0 <= i < N) to the histogram, for
// callers managing slot assignment themselves. Each concurrent
// goroutine must use its own slot; do not mix Handle(i) with Acquire/Do
// on the same slot range. The returned handle implements
// BatchedHistogramHandle.
func (h *Histogram) Handle(i int) HistogramHandle {
	if i < 0 || i >= h.spec.procs {
		panic("approxobj: histogram handle slot out of range")
	}
	return &histSlotHandle{h: h.runtimeHandle(i), bk: h.bk}
}

// histSlotHandle adapts a runtime histogram handle to the public query
// interface: observations round through the bucket layout on the way
// in, and every query folds one merged bucket read through
// internal/histogram's query engine. The read lands in the handle's
// reused counts buffer (handles are single-goroutine by contract), so
// steady-state queries allocate nothing.
type histSlotHandle struct {
	h      histRT
	bk     histogram.Buckets
	counts []uint64 // query scratch: one merged bucket read per query
}

var _ BatchedHistogramHandle = (*histSlotHandle)(nil)

// read folds one merged bucket read into the handle's scratch buffer.
// Each query reads once, so its answer is consistent within itself;
// the buffer is overwritten by the next query.
func (h *histSlotHandle) read() []uint64 {
	h.counts = h.h.BucketsInto(h.counts)
	return h.counts
}

func (h *histSlotHandle) Observe(v uint64) { h.ObserveN(v, 1) }

func (h *histSlotHandle) ObserveN(v uint64, d uint64) {
	if !h.bk.Contains(v) {
		panic(fmt.Sprintf("approxobj: observation %d out of range of %d-bounded histogram", v, h.bk.Bound()))
	}
	h.h.AddN(h.bk.Index(v), d)
}

func (h *histSlotHandle) Count() uint64        { return histogram.Count(h.read()) }
func (h *histSlotHandle) Sum() uint64          { return histogram.Sum(h.bk, h.read()) }
func (h *histSlotHandle) Rank(v uint64) uint64 { return histogram.Rank(h.bk, h.read(), v) }
func (h *histSlotHandle) Quantile(q float64) uint64 {
	return histogram.Quantile(h.bk, h.read(), q)
}
func (h *histSlotHandle) CDF(v uint64) float64 { return histogram.CDF(h.bk, h.read(), v) }
func (h *histSlotHandle) Steps() uint64        { return h.h.Steps() }
func (h *histSlotHandle) Flush()               { h.h.Flush() }

// snapshotValue reports the observation count — the scalar the registry
// exports for this kind; pair it with Quantile queries through a
// HistogramObject handle for the distribution itself.
func (h *Histogram) snapshotValue() uint64 {
	h.snapBuf = h.snap.BucketsInto(h.snapBuf)
	return histogram.Count(h.snapBuf)
}

// snapshotBounds narrows the envelope to the one that bounds the
// exported Value: the observation count lives purely in the rank
// domain, where only the Buffer term applies — the value-domain
// rounding factor k never skews a count. This keeps the (Value, Bounds)
// pair in an ObjectSnapshot self-consistent for kind-agnostic telemetry
// consumers.
func (h *Histogram) snapshotBounds() Bounds {
	b := h.Bounds()
	b.Mult = 1
	return b
}

func (h *Histogram) snapshotSteps() uint64 { return h.snap.Steps() }

// snapshotDetail folds one consistent bucket read into the registry's
// kind-agnostic distribution detail: cumulative counts at the upper
// boundary of each occupied bucket (the Prometheus bucket shape — see
// package expose). Only occupied buckets are emitted, which keeps the
// detail compact even for exact layouts with one bucket per value.
func (h *Histogram) snapshotDetail() *HistogramDetail {
	h.snapBuf = h.snap.BucketsInto(h.snapBuf)
	counts := h.snapBuf
	d := &HistogramDetail{
		Count: histogram.Count(counts),
		Sum:   histogram.Sum(h.bk, counts),
		Mult:  h.spec.acc.K(),
	}
	var cum uint64
	for j, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		d.Buckets = append(d.Buckets, HistogramBucket{
			UpperBound:      h.bk.Hi(j),
			CumulativeCount: cum,
		})
	}
	return d
}
